// Package seqmachine defines an Analyzer that checks the
// well-formedness of sim.Seq continuation state machines: the
// pc-indexed step programs that replaced blocking device loops
// (internal/nic's receive, deliberate-update, and outgoing-FIFO
// engines are the canonical users).
//
// A machine is recognized by its `X.Init(e, n, step)` call: when the
// step dispatcher resolves to a function declared in the analyzed
// package, the analyzer interprets its `switch pc` program
// symbolically — Next/Sleep/Acquire advance to pc+1 (inline or via the
// armed resume continuation), Goto jumps to its constant target, Wait
// parks until an external Start — and reports:
//
//   - non-constant step counts, case labels, or Goto targets (the
//     program counter space must be auditable at vet time);
//   - case labels or Goto targets outside [0, n);
//   - steps unreachable from any Start entry point through the
//     advance/Goto/resume edges;
//   - a terminal step that advances past the end of the step list,
//     silently halting the machine where a park (Wait) or an explicit
//     Goto was almost certainly intended;
//   - returning a Ctl produced by a different sequencer than the one
//     the dispatcher was Init'd on (the wrong machine's pc would
//     advance);
//   - hotpath coverage gaps: when the dispatcher is marked
//     //shrimp:hotpath, every step helper it dispatches to must be
//     marked too (so the hotpath analyzer's allocation checks see
//     them); when the machine is unmarked, closures allocated inside
//     its steps are flagged here directly — steps run per dispatched
//     event, so a closure per step is a closure per event.
//
// Machines whose dispatcher is a literal closure over a step slice
// (the NewSeq convenience path) are not modeled; the analyzer is
// silent about them.
package seqmachine

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"shrimp/internal/analysis"
)

// Analyzer checks sim.Seq step programs for well-formedness.
var Analyzer = &analysis.Analyzer{
	Name: "seqmachine",
	Doc: "check sim.Seq state machines: constant, in-range pc labels and Goto targets, " +
		"all steps reachable from Start entries, no silent fall-through past the last " +
		"step, no cross-sequencer Ctl returns, and hotpath marks (or closure-freedom) " +
		"on every step the dispatcher reaches",
	Run: run,
}

const (
	simPath          = "shrimp/internal/sim"
	hotpathDirective = "//shrimp:hotpath"
)

// resultKind classifies one possible Ctl outcome of a step.
type resultKind int

const (
	resAdvance resultKind = iota // Next/Sleep/Acquire: control lands on pc+1
	resGoto                      // Goto C / constant Ctl: control lands on C
	resWait                      // parks; an external Start re-enters
	resUnknown                   // unmodeled: assume nothing
)

// result is one classified Ctl outcome, positioned at the producing
// return expression.
type result struct {
	kind   resultKind
	target int // resGoto only
	pos    token.Pos
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		memo:     map[*types.Func][]result{},
		active:   map[*types.Func]bool{},
		helpers:  map[*types.Func]bool{},
		reported: map[token.Pos]bool{},
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := c.calleeOf(call); isSeqMethod(fn, "Init") && len(call.Args) == 3 {
				c.checkMachine(call)
			}
			return true
		})
	}
	return nil
}

// checker carries the per-package state of one run.
type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// memo caches the classified outcomes of step helpers; active
	// guards the recursion against helper cycles.
	memo   map[*types.Func][]result
	active map[*types.Func]bool
	// helpers collects the step helpers reached while classifying the
	// current machine, for the hotpath checks.
	helpers  map[*types.Func]bool
	reported map[token.Pos]bool
}

// reportf deduplicates by position: helper bodies are classified once
// but shared across clauses and machines.
func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkMachine analyzes one X.Init(e, n, step) site.
func (c *checker) checkMachine(call *ast.CallExpr) {
	var stepFn *types.Func
	switch e := ast.Unparen(call.Args[2]).(type) {
	case *ast.SelectorExpr:
		stepFn, _ = c.pass.TypesInfo.Uses[e.Sel].(*types.Func)
	case *ast.Ident:
		stepFn, _ = c.pass.TypesInfo.Uses[e].(*types.Func)
	}
	dispatch := c.decls[stepFn]
	if dispatch == nil {
		return // NewSeq-style literal dispatcher: not modeled
	}
	n, ok := c.intConst(call.Args[1])
	if !ok {
		c.reportf(call.Args[1].Pos(),
			"step count of %s's sequencer is not a constant; the pc space of a Seq machine must be auditable statically",
			dispatch.Name.Name)
		return
	}
	seqVar := c.resolveVar(selReceiver(call.Fun))

	pcVar := dispatchPCParam(c.pass.TypesInfo, dispatch)
	if pcVar == nil {
		return
	}
	var sw *ast.SwitchStmt
	ast.Inspect(dispatch.Body, func(nd ast.Node) bool {
		if s, ok := nd.(*ast.SwitchStmt); ok && sw == nil {
			if id, ok := ast.Unparen(s.Tag).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == pcVar {
				sw = s
			}
		}
		return true
	})
	if sw == nil {
		return // not a switch-shaped dispatcher; nothing to model
	}

	c.helpers = map[*types.Func]bool{}

	// Map each clause to the pcs it covers and its classified outcomes.
	type clauseInfo struct {
		clause  *ast.CaseClause
		pcs     []int
		results []result
	}
	var clauses []clauseInfo
	covered := map[int]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		ci := clauseInfo{clause: cc}
		for _, labelExpr := range cc.List {
			k, ok := c.intConst(labelExpr)
			if !ok {
				c.reportf(labelExpr.Pos(),
					"non-constant case label in %s's pc switch; step indices must be constants",
					dispatch.Name.Name)
				continue
			}
			if k < 0 || k >= n {
				c.reportf(labelExpr.Pos(),
					"case label %d in %s is outside the step range [0,%d)", k, dispatch.Name.Name, n)
				continue
			}
			ci.pcs = append(ci.pcs, int(k))
			covered[int(k)] = true
		}
		ci.results = c.classifyBody(cc.Body, seqVar, n, dispatch.Name.Name)
		clauses = append(clauses, ci)
	}
	if defaultClause != nil {
		ci := clauseInfo{clause: defaultClause}
		for k := 0; k < int(n); k++ {
			if !covered[k] {
				ci.pcs = append(ci.pcs, k)
			}
		}
		ci.results = c.classifyBody(defaultClause.Body, seqVar, n, dispatch.Name.Name)
		clauses = append(clauses, ci)
	}

	// Entry points: constant Start(pc) calls on the same sequencer
	// anywhere in the package. A non-constant Start or an exposed
	// ResumeFn makes every pc a potential entry; reachability is then
	// vacuous but the other checks still apply.
	entries, allEntries := c.startEntries(seqVar, n)

	// Reachability over advance/Goto edges from the entries. Sleep and
	// Acquire arm a resume at pc+1, so resAdvance covers both the
	// inline and the continuation path.
	reachable := map[int]bool{}
	if allEntries || seqVar == nil {
		for k := 0; k < int(n); k++ {
			reachable[k] = true
		}
	} else {
		succ := map[int][]int{}
		for _, ci := range clauses {
			for _, k := range ci.pcs {
				for _, r := range ci.results {
					switch r.kind {
					case resAdvance:
						succ[k] = append(succ[k], k+1)
					case resGoto:
						succ[k] = append(succ[k], r.target)
					}
				}
			}
		}
		work := append([]int(nil), entries...)
		for len(work) > 0 {
			k := work[len(work)-1]
			work = work[:len(work)-1]
			if k < 0 || k >= int(n) || reachable[k] {
				continue
			}
			reachable[k] = true
			work = append(work, succ[k]...)
		}
	}

	for _, ci := range clauses {
		if len(ci.pcs) == 0 {
			continue
		}
		anyReachable := false
		for _, k := range ci.pcs {
			if reachable[k] {
				anyReachable = true
			}
		}
		if !anyReachable {
			c.reportf(ci.clause.Pos(),
				"step %s of %s is unreachable: no Start entry, Goto, or resume continuation leads to it",
				pcList(ci.pcs), dispatch.Name.Name)
		}
		for _, k := range ci.pcs {
			if k != int(n)-1 {
				continue
			}
			for _, r := range ci.results {
				if r.kind == resAdvance {
					c.reportf(r.pos,
						"last step of %s advances past the end of the %d-step list, silently halting the machine; park with Wait or jump with Goto",
						dispatch.Name.Name, n)
				}
			}
		}
	}

	c.checkHotpath(dispatch)
}

// classifyBody classifies every return in a case clause body, flagging
// per-dispatch closures along the way.
func (c *checker) classifyBody(body []ast.Stmt, seqVar *types.Var, n int64, dispatchName string) []result {
	var out []result
	for _, stmt := range body {
		ast.Inspect(stmt, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				return false // classified (and flagged) by the hotpath checks
			case *ast.ReturnStmt:
				if len(nd.Results) == 1 {
					out = append(out, c.classifyExpr(nd.Results[0], seqVar, n, dispatchName)...)
				}
			}
			return true
		})
	}
	return out
}

// classifyExpr resolves one returned Ctl expression to its outcomes.
func (c *checker) classifyExpr(expr ast.Expr, seqVar *types.Var, n int64, dispatchName string) []result {
	expr = ast.Unparen(expr)
	if k, ok := c.intConst(expr); ok {
		if k == -1 { // sim.Wait
			return []result{{kind: resWait, pos: expr.Pos()}}
		}
		if k < 0 || k >= n {
			c.reportf(expr.Pos(),
				"constant Ctl %d returned in %s is outside the step range [0,%d)", k, dispatchName, n)
			return []result{{kind: resUnknown, pos: expr.Pos()}}
		}
		return []result{{kind: resGoto, target: int(k), pos: expr.Pos()}}
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return []result{{kind: resUnknown, pos: expr.Pos()}}
	}
	fn := c.calleeOf(call)
	if fn == nil {
		return []result{{kind: resUnknown, pos: expr.Pos()}}
	}
	if isSeqType(recvType(fn)) {
		if seqVar != nil {
			if rv := c.resolveVar(selReceiver(call.Fun)); rv != nil && rv != seqVar {
				c.reportf(expr.Pos(),
					"%s returns a Ctl produced by sequencer %s, but it drives a machine Init'd on %s; the wrong machine's pc would advance",
					dispatchName, rv.Name(), seqVar.Name())
			}
		}
		switch fn.Name() {
		case "Next", "Sleep", "Acquire":
			return []result{{kind: resAdvance, pos: expr.Pos()}}
		case "Goto":
			if len(call.Args) == 1 {
				k, ok := c.intConst(call.Args[0])
				if !ok {
					c.reportf(call.Args[0].Pos(),
						"non-constant Goto target in %s; step indices must be constants", dispatchName)
					return []result{{kind: resUnknown, pos: expr.Pos()}}
				}
				if k < 0 || k >= n {
					c.reportf(call.Args[0].Pos(),
						"Goto target %d in %s is outside the step range [0,%d)", k, dispatchName, n)
					return []result{{kind: resUnknown, pos: expr.Pos()}}
				}
				return []result{{kind: resGoto, target: int(k), pos: expr.Pos()}}
			}
		}
		return []result{{kind: resUnknown, pos: expr.Pos()}}
	}
	// A same-package helper returning sim.Ctl: a step function. Inline
	// its outcomes (memoized; cycles break to unknown).
	if fd, ok := c.decls[fn]; ok && returnsCtl(fn) {
		c.helpers[fn] = true
		if c.active[fn] {
			return []result{{kind: resUnknown, pos: expr.Pos()}}
		}
		if memo, ok := c.memo[fn]; ok {
			return memo
		}
		c.active[fn] = true
		var out []result
		ast.Inspect(fd.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				if len(nd.Results) == 1 {
					out = append(out, c.classifyExpr(nd.Results[0], seqVar, n, dispatchName)...)
				}
			}
			return true
		})
		delete(c.active, fn)
		c.memo[fn] = out
		return out
	}
	return []result{{kind: resUnknown, pos: expr.Pos()}}
}

// startEntries collects the constant pcs passed to Start on seqVar
// anywhere in the package. allEntries reports that the entry set could
// not be bounded (non-constant Start, ResumeFn exposure, or an
// unresolvable sequencer variable).
func (c *checker) startEntries(seqVar *types.Var, n int64) (entries []int, allEntries bool) {
	if seqVar == nil {
		return nil, true
	}
	for _, f := range c.pass.Files {
		if c.pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := c.calleeOf(call)
			if fn == nil || !isSeqType(recvType(fn)) {
				return true
			}
			if c.resolveVar(selReceiver(call.Fun)) != seqVar {
				return true
			}
			switch fn.Name() {
			case "Start":
				if len(call.Args) == 1 {
					if k, ok := c.intConst(call.Args[0]); ok && k >= 0 && k < n {
						entries = append(entries, int(k))
					} else {
						allEntries = true
					}
				}
			case "ResumeFn":
				allEntries = true
			}
			return true
		})
	}
	return entries, allEntries
}

// checkHotpath enforces allocation discipline over the dispatcher and
// the step helpers it reaches: a hotpath-marked dispatcher must mark
// its helpers too (so the hotpath analyzer covers them); an unmarked
// machine gets its per-dispatch closures flagged here.
func (c *checker) checkHotpath(dispatch *ast.FuncDecl) {
	flagClosures := func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(nd ast.Node) bool {
			if lit, ok := nd.(*ast.FuncLit); ok {
				c.reportf(lit.Pos(),
					"closure allocated inside Seq step %s runs once per dispatched event; bind the continuation once at construction",
					fd.Name.Name)
				return false
			}
			return true
		})
	}
	dispatchMarked := marked(dispatch)
	if !dispatchMarked {
		flagClosures(dispatch)
	}
	for fn := range c.helpers {
		fd := c.decls[fn]
		if fd == nil {
			continue
		}
		switch {
		case dispatchMarked && !marked(fd):
			c.reportf(fd.Name.Pos(),
				"step %s is dispatched by hotpath function %s but is not marked %s; the hotpath allocation checks do not see it",
				fd.Name.Name, dispatch.Name.Name, hotpathDirective)
		case !marked(fd):
			flagClosures(fd)
		}
	}
}

// --- small resolvers -------------------------------------------------

// calleeOf resolves a call to its static callee, if any.
func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// intConst evaluates expr as a constant integer.
func (c *checker) intConst(expr ast.Expr) (int64, bool) {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// resolveVar resolves an expression to the variable it denotes: a
// plain identifier or a field selection (n.rxSeq).
func (c *checker) resolveVar(expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := c.pass.TypesInfo.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel := c.pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
	}
	return nil
}

// selReceiver returns the receiver expression of a method-call fun.
func selReceiver(fun ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// dispatchPCParam returns the variable of the dispatcher's single int
// parameter.
func dispatchPCParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil || len(fd.Type.Params.List) != 1 {
		return nil
	}
	names := fd.Type.Params.List[0].Names
	if len(names) != 1 {
		return nil
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}

// recvType returns the base named type of fn's receiver, if any.
func recvType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isSeqType reports whether named is sim.Seq.
func isSeqType(named *types.Named) bool {
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == simPath && named.Obj().Name() == "Seq"
}

// isSeqMethod reports whether fn is the sim.Seq method with the given
// name.
func isSeqMethod(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && isSeqType(recvType(fn))
}

// returnsCtl reports whether fn's single result is sim.Ctl.
func returnsCtl(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == simPath && named.Obj().Name() == "Ctl"
}

// marked reports whether fd's doc comment carries the hotpath
// directive on a line of its own (the same contract the hotpath
// analyzer uses).
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		if strings.TrimSpace(cm.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// pcList renders a pc set for a diagnostic.
func pcList(pcs []int) string {
	parts := make([]string, len(pcs))
	for i, k := range pcs {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, ",")
}
