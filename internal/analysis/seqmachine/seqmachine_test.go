package seqmachine_test

import (
	"testing"

	"shrimp/internal/analysis/analysistest"
	"shrimp/internal/analysis/seqmachine"
)

func TestSeqmachine(t *testing.T) {
	analysistest.Run(t, "testdata", seqmachine.Analyzer, "shrimp/internal/dev")
}
