// Package sim stands in for the engine's sequencer: seqmachine
// identifies Seq methods by this package path and the receiver name,
// not by the implementation.
package sim

// Ctl is a step's control verdict.
type Ctl int

// Wait parks the machine until an armed continuation resumes it.
const Wait Ctl = -1

// Time is a simulated instant.
type Time int64

// Engine stands in for the event engine.
type Engine struct{ now Time }

// Resource stands in for an exclusive resource (a memory bus).
type Resource struct{}

// Seq is the sequencer stub.
type Seq struct {
	n  int
	pc int
}

// Init binds the machine to a step count and dispatch function.
func (s *Seq) Init(e *Engine, n int, step func(pc int) Ctl) { s.n = n }

// Start enters the machine at pc.
func (s *Seq) Start(pc int) { s.pc = pc }

// ResumeFn returns the armed resume continuation.
func (s *Seq) ResumeFn() func() { return nil }

// Next advances to the following step.
func (s *Seq) Next() Ctl { return Ctl(s.pc + 1) }

// Goto jumps to step i.
func (s *Seq) Goto(i int) Ctl { return Ctl(i) }

// Sleep advances after d elapses.
func (s *Seq) Sleep(d Time) Ctl { return Ctl(s.pc + 1) }

// Acquire advances once r is held.
func (s *Seq) Acquire(r *Resource) Ctl { return Ctl(s.pc + 1) }
