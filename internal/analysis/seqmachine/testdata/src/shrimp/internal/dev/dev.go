// Package dev exercises the well-formedness checks on sim.Seq state
// machines: constant pc spaces, reachable steps, no fall-through past
// the end, and hotpath marking on dispatch helpers.
package dev

import "shrimp/internal/sim"

func bad() bool { return false }

// good is the NIC idiom: hotpath dispatch, helper steps, a terminal
// Wait, and a default clause covering the remaining pc.
type good struct {
	seq sim.Seq
	bus sim.Resource
}

func (g *good) start(e *sim.Engine) {
	g.seq.Init(e, 3, g.step)
	g.seq.Start(0)
}

//shrimp:hotpath
func (g *good) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		return g.seq.Acquire(&g.bus)
	case 1:
		return g.stepMid()
	default:
		return g.stepEnd()
	}
}

//shrimp:hotpath
func (g *good) stepMid() sim.Ctl { return g.seq.Sleep(4) }

//shrimp:hotpath
func (g *good) stepEnd() sim.Ctl { return sim.Wait }

// skipper parks at step 0 with no resume arc, so the rest of its pc
// space is dead.
type skipper struct{ seq sim.Seq }

func (s *skipper) start(e *sim.Engine) {
	s.seq.Init(e, 3, s.step)
	s.seq.Start(0)
}

func (s *skipper) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		return sim.Wait
	case 1: // want `step 1 of step is unreachable: no Start entry, Goto, or resume continuation leads to it`
		return s.seq.Next()
	case 2: // want `step 2 of step is unreachable: no Start entry, Goto, or resume continuation leads to it`
		return sim.Wait
	}
	return sim.Wait
}

// faller advances past the end of its step list.
type faller struct{ seq sim.Seq }

func (f *faller) start(e *sim.Engine) {
	f.seq.Init(e, 2, f.step)
	f.seq.Start(0)
}

func (f *faller) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		return f.seq.Next()
	default:
		return f.seq.Next() // want `last step of step advances past the end of the 2-step list, silently halting the machine; park with Wait or jump with Goto`
	}
}

// wild mixes a cross-sequencer Ctl with an out-of-range Goto.
type wild struct {
	seq   sim.Seq
	other sim.Seq
}

func (w *wild) start(e *sim.Engine) {
	w.seq.Init(e, 2, w.step)
	w.seq.Start(0)
}

func (w *wild) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		if bad() {
			return w.other.Next() // want `step returns a Ctl produced by sequencer other, but it drives a machine Init'd on seq; the wrong machine's pc would advance`
		}
		return w.seq.Next()
	default:
		return w.seq.Goto(5) // want `Goto target 5 in step is outside the step range \[0,2\)`
	}
}

// varn binds a run-time step count, so its pc space cannot be audited.
type varn struct{ seq sim.Seq }

func (v *varn) start(e *sim.Engine, n int) {
	v.seq.Init(e, n, v.step) // want `step count of step's sequencer is not a constant; the pc space of a Seq machine must be auditable statically`
}

func (v *varn) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		return sim.Wait
	}
	return sim.Wait
}

// hot has a hotpath dispatcher calling an unmarked helper step.
type hot struct{ seq sim.Seq }

func (h *hot) start(e *sim.Engine) {
	h.seq.Init(e, 2, h.step)
	h.seq.Start(0)
}

//shrimp:hotpath
func (h *hot) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		return h.helper()
	default:
		return sim.Wait
	}
}

func (h *hot) helper() sim.Ctl { // want `step helper is dispatched by hotpath function step but is not marked //shrimp:hotpath; the hotpath allocation checks do not see it`
	return h.seq.Next()
}

// cold is unmarked, so per-dispatch closures are flagged directly.
type cold struct{ seq sim.Seq }

func (c *cold) start(e *sim.Engine) {
	c.seq.Init(e, 2, c.step)
	c.seq.Start(0)
}

func (c *cold) step(pc int) sim.Ctl {
	switch pc {
	case 0:
		f := func() {} // want `closure allocated inside Seq step step runs once per dispatched event; bind the continuation once at construction`
		f()
		return c.seq.Next()
	default:
		return sim.Wait
	}
}
