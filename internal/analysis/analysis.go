// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The repo builds its own framework instead of importing x/tools so
// that the vet suite needs nothing beyond the standard library — the
// simulator itself has no third-party dependencies, and its linter
// should not be the first. The API mirrors x/tools closely enough that
// the analyzers could be ported to the real framework by changing
// imports, should the dependency ever be acceptable.
//
// The analyzers themselves live in subpackages (walltime, maporder,
// unseededrand, nogoroutine, hotpath, tracenil); cmd/shrimpvet wires
// them into a multichecker that runs standalone or as a `go vet
// -vettool`. See docs/shrimpvet.md for the rule catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `shrimpvet help`.
	Doc string
	// Facts marks the analyzer as exporting package facts: summaries
	// of the analyzed package that analyses of importing packages
	// read back through Pass.ImportPackageFact. Fact-exporting
	// analyzers run on dependencies before their importers (see
	// TopoOrder and the vettool VetxOnly pass).
	Facts bool
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report/Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each diagnostic as it is emitted.
	report func(Diagnostic)
	// store holds package facts across the whole run; nil for
	// fact-free invocations.
	store *FactStore
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite
// checks shipped simulator code; tests may legitimately spawn
// goroutines, read wall clocks (benchmark plumbing), or iterate maps.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is the unit handed to Run: a parsed, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies each analyzer to pkg and returns the surviving
// diagnostics in source order, with //lint:ignore suppressions applied.
// store carries package facts across packages: fact-exporting
// analyzers record their summaries in it, and read back the facts of
// previously analyzed dependencies. Callers analyzing several
// packages should share one store and process packages in TopoOrder;
// nil means a fact-free run (single-package fixtures, fact-free
// suites).
func Run(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	ig := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			store:     store,
			report: func(d Diagnostic) {
				if !ig.suppresses(pkg.Fset, d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ComputeFacts runs only the fact-exporting analyzers over pkg,
// discarding diagnostics, so that the store gains the package's
// summaries. This is the dependency pass: the vettool's VetxOnly
// units use it to produce facts for packages whose diagnostics were
// already (or will separately be) reported.
func ComputeFacts(pkg *Package, analyzers []*Analyzer, store *FactStore) error {
	for _, a := range analyzers {
		if !a.Facts {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			store:     store,
			report:    func(Diagnostic) {},
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return nil
}

// ignoreKey addresses one suppressed (file, line).
type ignoreKey struct {
	file string
	line int
}

// ignoreSet records //lint:ignore directives by position.
type ignoreSet struct {
	// byLine maps the directive's own line to the analyzer names it
	// suppresses ("*" suppresses all). A directive covers its own line
	// and the following line, so it can sit above the flagged
	// statement or trail the flagged expression.
	byLine map[ignoreKey][]string
}

// collectIgnores scans file comments for suppression directives of the
// form:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// A justification is mandatory: a bare directive suppresses nothing
// (the analyzers exist because "trust me" is how determinism bugs
// shipped historically).
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[ignoreKey][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no justification: directive is inert
				}
				pos := fset.Position(c.Pos())
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				ig.byLine[key] = append(ig.byLine[key], strings.Split(fields[0], ",")...)
			}
		}
	}
	return ig
}

// suppresses reports whether d is covered by a directive on its own
// line or the line above.
func (ig *ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range ig.byLine[ignoreKey{file: pos.Filename, line: line}] {
			if name == d.Analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}
