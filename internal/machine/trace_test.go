package machine

import (
	"testing"

	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// TestTracelessMachineAllocationFree pins the disabled-tracing cost at
// the machine level: with no recorder attached, the full AU data path
// through a machine-built stack — snooped store, combining, FIFO, mesh
// transit, receive DMA — performs zero steady-state heap allocations.
// Every trace hook on that path must stay behind a nil check for this
// to hold.
func TestTracelessMachineAllocationFree(t *testing.T) {
	m := New(DefaultConfig(2))
	defer m.Close()
	n0, n1 := m.Nodes[0], m.Nodes[1]

	dst := n1.Mem.Alloc(1)
	n1.NIC.SetIncoming(dst.VPN(), false)
	au := n0.Mem.Alloc(1)
	n0.NIC.MapOutgoing(au.VPN(), n1.ID, dst.VPN(), true, true, false)

	word := uint32(1)
	avg := testing.AllocsPerRun(100, func() {
		n0.Mem.WriteUint32(nil, au+8, word)
		n0.Mem.WriteUint32(nil, au+12, word+1)
		word += 2
		m.E.Run() // drain: combine flush, mesh transit, receive, recycle
	})
	if avg != 0 {
		t.Fatalf("untraced AU path allocates %.1f objects per burst, want 0", avg)
	}
}

// duRoundTrip runs one DU transfer between the two nodes of a traced
// machine and returns the recorder.
func duRoundTrip(t *testing.T, mut func(*Config)) *trace.Recorder {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Trace = trace.NewRecorder(trace.Options{})
	if mut != nil {
		mut(&cfg)
	}
	m := New(cfg)
	defer m.Close()
	n0, n1 := m.Nodes[0], m.Nodes[1]

	dst := n1.Mem.Alloc(1)
	n1.NIC.SetIncoming(dst.VPN(), false)
	src := n0.Mem.Alloc(1)
	proxy := n0.Mem.Alloc(1)
	n0.NIC.MapOutgoing(proxy.VPN(), n1.ID, dst.VPN(), false, false, false)

	m.RunParallel("traced-du", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		nd.NIC.SendDU(p, src, proxy, 256, false, true)
		nd.NIC.WaitDUIdle(p)
		p.Sleep(100 * sim.Microsecond)
	})
	return cfg.Trace
}

// TestTracedMachineRecordsEvents checks the machine wiring end to end:
// a DU transfer on a traced machine leaves the expected event kinds
// and latency samples in the recorder.
func TestTracedMachineRecordsEvents(t *testing.T) {
	rec := duRoundTrip(t, nil)

	kinds := map[trace.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{trace.KProcSpawn, trace.KPktSend,
		trace.KPktRecv, trace.KLinkHop, trace.KDUStart, trace.KDUEnd,
		trace.KDUQueue, trace.KMsgRecv} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded (kinds seen: %v)", k, kinds)
		}
	}
	if kinds[trace.KPktSend] != kinds[trace.KPktRecv] {
		t.Errorf("pkt-send/pkt-recv mismatch: %d vs %d",
			kinds[trace.KPktSend], kinds[trace.KPktRecv])
	}
	if rec.Hist(trace.LatMesh).Count() == 0 {
		t.Error("no mesh latency samples")
	}
	if rec.Hist(trace.LatDU).Count() == 0 {
		t.Error("no DU latency samples")
	}
	// DU end-to-end latency includes mesh transit, so its minimum cannot
	// be below the mesh minimum.
	if rec.Hist(trace.LatDU).Min() < rec.Hist(trace.LatMesh).Min() {
		t.Errorf("DU latency min %dns below mesh min %dns",
			rec.Hist(trace.LatDU).Min(), rec.Hist(trace.LatMesh).Min())
	}
}

// TestTracedMachineDeterministic runs the identical traced scenario
// twice and requires identical event streams — the machine-level form
// of the byte-identical trace guarantee.
func TestTracedMachineDeterministic(t *testing.T) {
	a := duRoundTrip(t, nil).Events()
	b := duRoundTrip(t, nil).Events()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTracedInterruptEvents checks the interrupt hook in the machine
// layer fires under the interrupt-per-message knob.
func TestTracedInterruptEvents(t *testing.T) {
	rec := duRoundTrip(t, func(c *Config) { c.NIC.InterruptPerMessage = true })
	found := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KInterrupt {
			found++
			if ev.Node != 1 {
				t.Errorf("interrupt on node %d, want receiver 1", ev.Node)
			}
		}
	}
	if found == 0 {
		t.Fatal("no interrupt events under InterruptPerMessage")
	}
}
