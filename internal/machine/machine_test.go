package machine

import (
	"testing"

	"shrimp/internal/memory"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
)

// pair builds a 2-node machine with an exported page on node 1 and a
// proxy/AU mapping on node 0, returning the machine and the two
// page-aligned buffer addresses.
func pair(t *testing.T, mut func(*Config)) (m *Machine, srcAddr, proxyAddr, dstAddr memory.Addr) {
	t.Helper()
	cfg := DefaultConfig(2)
	if mut != nil {
		mut(&cfg)
	}
	m = New(cfg)
	t.Cleanup(m.Close)
	n0, n1 := m.Nodes[0], m.Nodes[1]

	dstAddr = n1.Mem.Alloc(1) // receive buffer on node 1
	n1.NIC.SetIncoming(dstAddr.VPN(), false)

	srcAddr = n0.Mem.Alloc(1)   // send data on node 0
	proxyAddr = n0.Mem.Alloc(1) // proxy page on node 0
	n0.NIC.MapOutgoing(proxyAddr.VPN(), n1.ID, dstAddr.VPN(), false, false, false)
	return m, srcAddr, proxyAddr, dstAddr
}

func TestDeliberateUpdateMovesBytes(t *testing.T) {
	m, src, proxy, dst := pair(t, nil)
	n0, n1 := m.Nodes[0], m.Nodes[1]
	payload := []byte("deliberate update payload")
	n0.Mem.Write(nil, src, payload)

	m.RunParallel("du", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		nd.CPU.ChargeTo(stats.Comm, m.Cfg.Cost.SendOverheadDU)
		nd.CPU.Flush(p)
		nd.NIC.SendDU(p, src, proxy, len(payload), false, true)
		nd.NIC.WaitDUIdle(p)
		p.Sleep(100 * sim.Microsecond) // let delivery complete
	})

	got := make([]byte, len(payload))
	n1.Mem.Read(nil, dst, got)
	if string(got) != string(payload) {
		t.Fatalf("received %q", got)
	}
	if n1.Acct.Counters.MessagesRecv != 1 {
		t.Fatalf("MessagesRecv = %d", n1.Acct.Counters.MessagesRecv)
	}
	if n0.Acct.Counters.MessagesSent != 1 || n0.Acct.Counters.DUTransfers != 1 {
		t.Fatalf("sender counters %+v", n0.Acct.Counters)
	}
}

func TestAutomaticUpdatePropagatesStores(t *testing.T) {
	m, _, _, dst := pair(t, nil)
	n0, n1 := m.Nodes[0], m.Nodes[1]
	// Bind a local page on node 0 for AU to node 1's buffer (no combine).
	auAddr := n0.Mem.Alloc(1)
	n0.NIC.MapOutgoing(auAddr.VPN(), n1.ID, dst.VPN(), true, false, false)

	m.RunParallel("au", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		nd.StoreUint32(p, auAddr+8, 0xabcd1234)
		nd.CPU.Flush(p)
		p.Sleep(100 * sim.Microsecond)
	})

	if got := n1.Mem.ReadUint32(nil, dst+8); got != 0xabcd1234 {
		t.Fatalf("AU value at receiver = %#x", got)
	}
	if n0.Acct.Counters.AUStores == 0 || n0.Acct.Counters.AUPackets == 0 {
		t.Fatalf("AU counters %+v", n0.Acct.Counters)
	}
}

func TestAUCombiningReducesPackets(t *testing.T) {
	run := func(combine bool) int64 {
		m, _, _, dst := pair(t, nil)
		n0 := m.Nodes[0]
		auAddr := n0.Mem.Alloc(1)
		n0.NIC.MapOutgoing(auAddr.VPN(), m.Nodes[1].ID, dst.VPN(), true, combine, false)
		buf := make([]byte, 1024)
		for i := range buf {
			buf[i] = byte(i)
		}
		m.RunParallel("au", func(nd *Node, p *sim.Proc) {
			if nd != n0 {
				return
			}
			nd.StoreBytes(p, auAddr, buf)
			nd.CPU.Flush(p)
			p.Sleep(time1ms)
		})
		got := make([]byte, len(buf))
		m.Nodes[1].Mem.Read(nil, dst, got)
		for i := range got {
			if got[i] != buf[i] {
				panic("AU data corrupted")
			}
		}
		return n0.Acct.Counters.AUPackets
	}
	with := run(true)
	without := run(false)
	if with*4 > without {
		t.Fatalf("combining did not reduce packets: with=%d without=%d", with, without)
	}
}

const time1ms = sim.Millisecond

func TestFIFODrainsFasterThanItFills(t *testing.T) {
	// §4.5.2: in the absence of incoming traffic the FIFO drains faster
	// than the CPU can fill it, so even a tiny FIFO never stalls.
	m, _, _, dst := pair(t, func(c *Config) {
		c.NIC.OutFIFOBytes = 1024
		c.NIC.FIFOThresholdBytes = 512
		c.NIC.FIFOLowWaterBytes = 128
	})
	n0 := m.Nodes[0]
	auAddr := n0.Mem.Alloc(1)
	n0.NIC.MapOutgoing(auAddr.VPN(), m.Nodes[1].ID, dst.VPN(), true, false, false)
	buf := make([]byte, 4096)
	m.RunParallel("burst", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		nd.StoreBytes(p, auAddr, buf)
		nd.CPU.Flush(p)
		p.Sleep(time1ms)
	})
	if n0.Acct.Counters.FlowStalls != 0 {
		t.Fatalf("unexpected stalls without incoming traffic: %d", n0.Acct.Counters.FlowStalls)
	}
}

func TestFlowControlStallsWhenIncomingBlocksDrain(t *testing.T) {
	// §4.5.2: incoming packets have priority for the NIC port, so the
	// FIFO cannot drain while packets arrive; with a tiny FIFO the
	// threshold interrupt fires and AU stores stall.
	m, src, proxy, dst := pair(t, func(c *Config) {
		c.NIC.OutFIFOBytes = 1024
		c.NIC.FIFOThresholdBytes = 512
		c.NIC.FIFOLowWaterBytes = 128
	})
	n0, n1 := m.Nodes[0], m.Nodes[1]
	// Reverse path: node 1 floods node 0 with large DU transfers.
	rev := n0.Mem.Alloc(1)
	n0.NIC.SetIncoming(rev.VPN(), false)
	src1 := n1.Mem.Alloc(1)
	proxy1 := n1.Mem.Alloc(1)
	n1.NIC.MapOutgoing(proxy1.VPN(), n0.ID, rev.VPN(), false, false, false)
	_ = src
	_ = proxy

	auAddr := n0.Mem.Alloc(1)
	n0.NIC.MapOutgoing(auAddr.VPN(), n1.ID, dst.VPN(), true, false, false)
	buf := make([]byte, 4096)

	m.RunParallel("contend", func(nd *Node, p *sim.Proc) {
		switch nd {
		case n1:
			for i := 0; i < 20; i++ {
				nd.NIC.SendDU(p, src1, proxy1, 4096, false, true)
			}
		case n0:
			p.Sleep(200 * sim.Microsecond) // let incoming traffic start
			for i := 0; i < 4; i++ {
				nd.StoreBytes(p, auAddr, buf)
			}
			nd.CPU.Flush(p)
		}
		p.Sleep(10 * time1ms)
	})
	if n0.Acct.Counters.FlowStalls == 0 {
		t.Fatal("no flow-control stalls while incoming traffic blocks the drain")
	}
	if hw := n0.NIC.FIFOHighWater(); hw > 1024 {
		t.Fatalf("FIFO exceeded capacity: high water %d", hw)
	}
	// Data must still arrive intact despite the stalls.
	got := make([]byte, len(buf))
	n1.Mem.Read(nil, dst, got)
	for i := range got {
		if got[i] != buf[i] {
			t.Fatalf("AU data corrupted at %d", i)
		}
	}
}

func TestInterruptPerMessageKnob(t *testing.T) {
	m, src, proxy, _ := pair(t, func(c *Config) { c.NIC.InterruptPerMessage = true })
	n0, n1 := m.Nodes[0], m.Nodes[1]
	m.RunParallel("send", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		for i := 0; i < 5; i++ {
			nd.NIC.SendDU(p, src, proxy, 64, false, true)
			nd.NIC.WaitDUIdle(p)
		}
		p.Sleep(time1ms)
	})
	if n1.Acct.Counters.Interrupts != 5 {
		t.Fatalf("receiver interrupts = %d, want 5", n1.Acct.Counters.Interrupts)
	}
}

func TestNotificationInterruptRequiresBothBits(t *testing.T) {
	cases := []struct {
		sender, receiver bool
		want             int64
	}{
		{false, false, 0},
		{true, false, 0},
		{false, true, 0},
		{true, true, 1},
	}
	for _, c := range cases {
		m, src, proxy, dst := pair(t, nil)
		n0, n1 := m.Nodes[0], m.Nodes[1]
		n1.NIC.SetIncomingInterrupt(dst.VPN(), c.receiver)
		notified := 0
		n1.SetNotifyDispatch(func(p *sim.Proc, pkt *nic.Packet) { notified++ })
		m.RunParallel("send", func(nd *Node, p *sim.Proc) {
			if nd != n0 {
				return
			}
			nd.NIC.SendDU(p, src, proxy, 16, c.sender, true)
			p.Sleep(time1ms)
		})
		if int64(notified) != c.want {
			t.Errorf("sender=%v receiver=%v: notifications = %d, want %d",
				c.sender, c.receiver, notified, c.want)
		}
	}
}

func TestDUQueueDepthBackpressure(t *testing.T) {
	// With depth 1, the second send must wait for the first transfer's
	// DMA; with depth 2 it queues immediately. Initiation time of the
	// second send should differ.
	initiation := func(depth int) sim.Time {
		m, src, proxy, _ := pair(t, func(c *Config) { c.NIC.DUQueueDepth = depth })
		n0 := m.Nodes[0]
		var second sim.Time
		m.RunParallel("q", func(nd *Node, p *sim.Proc) {
			if nd != n0 {
				return
			}
			nd.NIC.SendDU(p, src, proxy, 4096, false, true)
			nd.NIC.SendDU(p, src, proxy, 4096, false, true)
			second = p.Now()
			p.Sleep(time1ms)
		})
		return second
	}
	d1 := initiation(1)
	d2 := initiation(2)
	if d2 >= d1 {
		t.Fatalf("depth-2 initiation %v not faster than depth-1 %v", d2, d1)
	}
}

func TestSyscallKnobChargesOverhead(t *testing.T) {
	m, _, _, _ := pair(t, func(c *Config) { c.SyscallPerSend = true })
	if !m.Cfg.SyscallPerSend {
		t.Fatal("knob not set")
	}
	// The charging itself happens in the VMMC layer; here we only check
	// the CPU plumbing used for it.
	n0 := m.Nodes[0]
	m.RunParallel("charge", func(nd *Node, p *sim.Proc) {
		if nd != n0 {
			return
		}
		nd.CPU.ChargeOverhead(m.Cfg.Cost.SyscallCost)
		nd.CPU.Flush(p)
	})
	if n0.Acct.Breakdown[stats.Overhead] != m.Cfg.Cost.SyscallCost {
		t.Fatalf("overhead = %v", n0.Acct.Breakdown[stats.Overhead])
	}
}

func TestCPUWaitAccounting(t *testing.T) {
	m := New(DefaultConfig(1))
	defer m.Close()
	nd := m.Nodes[0]
	m.RunParallel("acct", func(n *Node, p *sim.Proc) {
		n.CPU.Charge(10 * sim.Microsecond)
		since := n.CPU.BeginWait(p)
		p.Sleep(5 * sim.Microsecond)
		n.CPU.EndWait(p, stats.Lock, since)
	})
	b := nd.Acct.Breakdown
	if b[stats.Compute] != 10*sim.Microsecond || b[stats.Lock] != 5*sim.Microsecond {
		t.Fatalf("breakdown %+v", b)
	}
}

func TestStealChargedAtNextFlush(t *testing.T) {
	m := New(DefaultConfig(1))
	defer m.Close()
	nd := m.Nodes[0]
	elapsed := m.RunParallel("steal", func(n *Node, p *sim.Proc) {
		n.CPU.Steal(7 * sim.Microsecond)
		n.CPU.Charge(3 * sim.Microsecond)
		n.CPU.Flush(p)
	})
	if elapsed != 10*sim.Microsecond {
		t.Fatalf("elapsed %v, want 10us", elapsed)
	}
	if nd.Acct.Breakdown[stats.Overhead] != 7*sim.Microsecond {
		t.Fatalf("overhead %v", nd.Acct.Breakdown[stats.Overhead])
	}
}

func TestStealDuringWaitOverlaps(t *testing.T) {
	m := New(DefaultConfig(1))
	defer m.Close()
	elapsed := m.RunParallel("steal", func(n *Node, p *sim.Proc) {
		since := n.CPU.BeginWait(p)
		n.CPU.Steal(50 * sim.Microsecond) // handler during wait: overlapped
		p.Sleep(5 * sim.Microsecond)
		n.CPU.EndWait(p, stats.Comm, since)
		n.CPU.Flush(p)
	})
	if elapsed != 5*sim.Microsecond {
		t.Fatalf("elapsed %v, want 5us", elapsed)
	}
}

func TestMeshSizing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 15, 16} {
		cfg := DefaultConfig(n)
		if cfg.Mesh.Width*cfg.Mesh.Height < n {
			t.Errorf("mesh %dx%d too small for %d nodes", cfg.Mesh.Width, cfg.Mesh.Height, n)
		}
		m := New(cfg)
		if len(m.Nodes) != n {
			t.Errorf("built %d nodes, want %d", len(m.Nodes), n)
		}
		m.Close()
	}
}
