package machine

import (
	"shrimp/internal/sim"
	"shrimp/internal/stats"
)

// CPU accumulates virtual time owed by one logical thread of execution
// on a node and flushes it to the simulation clock lazily, at
// interaction points. This keeps the event count manageable:
// computation between communication events costs a single event no
// matter how many operations it models.
//
// Each node has one application CPU context (Node.CPU) and any number
// of handler contexts (interrupt and notification handlers). Handler
// contexts "shadow" the application context: time a handler executes is
// stolen from the application, modeling preemption on a uniprocessor
// node. Stolen time is charged at the application's next flush unless
// it is blocked in a wait primitive, in which case the handler's
// execution overlaps the wait.
//
//shrimp:state
type CPU struct {
	node    *Node       //shrimp:nostate wiring: back-pointer to the owning node
	acct    *stats.Node //shrimp:nostate wiring: breakdown sink identity (application account, or a discard for handlers)
	shadow  *CPU        //shrimp:nostate wiring: application context to steal from (handlers only), fixed at construction
	accum   [stats.NumCategories]sim.Time
	pending sim.Time // sum of accum
	stolen  sim.Time
	waiting bool //shrimp:nostate asserted: Quiescent requires no CPU context marked waiting
	// maxAccum bounds how much unflushed time may accumulate before an
	// automatic-update store forces a flush, so AU packet timestamps
	// stay close to their true instants.
	maxAccum sim.Time //shrimp:nostate wiring: fixed flush-threshold knob
}

// newHandlerCPU returns an accounting context for a handler running on
// nd. Its time displaces the application but its breakdown is discarded
// (the displacement already appears as application overhead).
func (nd *Node) newHandlerCPU() *CPU {
	return &CPU{node: nd, acct: &stats.Node{}, shadow: nd.CPU, maxAccum: nd.CPU.maxAccum}
}

// Charge accrues d of useful computation.
func (c *CPU) Charge(d sim.Time) { c.ChargeTo(stats.Compute, d) }

// ChargeOverhead accrues d of protocol/kernel overhead.
func (c *CPU) ChargeOverhead(d sim.Time) { c.ChargeTo(stats.Overhead, d) }

// ChargeTo accrues d against an explicit breakdown category.
func (c *CPU) ChargeTo(cat stats.Category, d sim.Time) {
	if d < 0 {
		panic("machine: negative charge")
	}
	c.accum[cat] += d
	c.pending += d
}

// Pending reports unflushed accumulated time (including stolen time).
func (c *CPU) Pending() sim.Time { return c.pending + c.stolen }

// Flush advances the simulation clock by all accumulated and stolen
// time, crediting the breakdown. Every primitive that interacts with
// the NIC or another process must flush first.
func (c *CPU) Flush(p *sim.Proc) {
	d := c.pending + c.stolen
	if d == 0 {
		return
	}
	for i := range c.accum {
		c.acct.Breakdown[i] += c.accum[i]
		c.accum[i] = 0
	}
	c.acct.Breakdown[stats.Overhead] += c.stolen
	c.pending = 0
	c.stolen = 0
	if c.shadow != nil {
		// Handler execution displaces the application.
		c.shadow.Steal(d)
	}
	p.Sleep(d)
}

// Steal charges d of handler execution against this context. If it is
// computing, it pays at its next flush; if it is blocked waiting, the
// handler overlaps the wait and the time is only visible through the
// handler's own latency.
func (c *CPU) Steal(d sim.Time) {
	if c.waiting {
		return
	}
	c.stolen += d
}

// BeginWait flushes pending time and marks this context as blocked in a
// wait primitive. It returns the wait start time; pass it to EndWait.
func (c *CPU) BeginWait(p *sim.Proc) sim.Time {
	c.Flush(p)
	c.waiting = true
	return p.Now()
}

// EndWait ends a wait begun with BeginWait, charging the blocked
// interval to cat.
func (c *CPU) EndWait(p *sim.Proc, cat stats.Category, since sim.Time) {
	c.waiting = false
	c.acct.Breakdown[cat] += p.Now() - since
}
