package machine

import (
	"fmt"

	"shrimp/internal/memory"
	"shrimp/internal/mesh"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/trace"
)

// Config describes a SHRIMP system to build.
type Config struct {
	// Nodes is the number of compute nodes (1..Mesh.Width*Mesh.Height).
	Nodes int
	Mesh  mesh.Config
	NIC   nic.Config
	Cost  CostModel
	// SyscallPerSend charges a kernel trap on every message send,
	// emulating the kernel-level-DMA design of §4.3.
	SyscallPerSend bool
	// MaxAccum bounds unflushed CPU time before automatic-update stores
	// force a flush (keeps AU packet timing honest).
	MaxAccum sim.Time
	// Trace, when non-nil, is attached to the engine before any device
	// is constructed, so every layer caches it and emits trace events.
	// Nil (the default) keeps every hot path on its zero-cost nil-check
	// branch. Excluded from JSON so the harness's canonical cell
	// encoding (a pure-data description of a run) can marshal Config
	// directly.
	Trace *trace.Recorder `json:"-"`
}

// DefaultConfig returns an n-node SHRIMP system as built (AU enabled,
// combining on, 32 KB FIFO, DU queue depth 1, no kernel knobs).
func DefaultConfig(n int) Config {
	mc := mesh.DefaultConfig()
	// Shrink the mesh to fit small systems so hop counts stay sensible
	// for the speedup experiments.
	if n <= 0 {
		panic("machine: need at least one node")
	}
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	mc.Width, mc.Height = w, h
	return Config{
		Nodes:    n,
		Mesh:     mc,
		NIC:      nic.DefaultConfig(),
		Cost:     DefaultCostModel(),
		MaxAccum: 1 * sim.Microsecond,
	}
}

// MyrinetLikeConfig returns the §4.1 off-the-shelf comparison system.
func MyrinetLikeConfig(n int) Config {
	c := DefaultConfig(n)
	c.NIC = nic.MyrinetLikeConfig()
	c.Cost = MyrinetCostModel()
	return c
}

// Node is one compute node: CPU accounting, memory, memory bus, NIC.
//
//shrimp:state
type Node struct {
	ID   mesh.NodeID          //shrimp:nostate wiring: fixed node identity
	M    *Machine             //shrimp:nostate wiring: back-pointer to the owning machine
	Mem  *memory.AddressSpace //shrimp:nostate captured: captured by BeginSnapshot; restored through the memory.Snapshot handle
	Bus  *sim.Resource        //shrimp:nostate asserted: Quiescent requires every memory bus idle
	NIC  *nic.NIC
	CPU  *CPU
	Acct *stats.Node

	notify func(p *sim.Proc, pkt *nic.Packet) //shrimp:nostate wiring: dispatch hook attached by the vmmc layer at construction
}

// Machine is the whole system.
type Machine struct {
	E     *sim.Engine
	Net   *mesh.Network
	Nodes []*Node
	Cfg   Config
	Acct  *stats.Machine //shrimp:nostate captured: aliases the per-node accounts, captured individually via Node.Acct
}

// New builds and starts a machine: all nodes, NICs and the backplane.
func New(cfg Config) *Machine {
	if cfg.Nodes > cfg.Mesh.Width*cfg.Mesh.Height {
		panic(fmt.Sprintf("machine: %d nodes exceed %dx%d mesh",
			cfg.Nodes, cfg.Mesh.Width, cfg.Mesh.Height))
	}
	if cfg.MaxAccum <= 0 {
		cfg.MaxAccum = 1 * sim.Microsecond
	}
	if cfg.NIC.InterruptStall <= 0 {
		cfg.NIC.InterruptStall = cfg.Cost.InterruptCost
	}
	e := sim.NewEngine()
	// The tracer must be attached before any device is built: mesh and
	// NIC construction cache e.Tracer() into their hot-path fields.
	e.SetTracer(cfg.Trace)
	m := &Machine{
		E:    e,
		Net:  mesh.New(e, cfg.Mesh),
		Cfg:  cfg,
		Acct: stats.NewMachine(cfg.Nodes),
	}
	// Attach inert sinks for unpopulated mesh positions.
	for i := cfg.Nodes; i < m.Net.Nodes(); i++ {
		m.Net.Attach(mesh.NodeID(i), func(*mesh.Packet) {})
	}
	for i := 0; i < cfg.Nodes; i++ {
		nd := &Node{
			ID:   mesh.NodeID(i),
			M:    m,
			Mem:  memory.NewAddressSpace(),
			Bus:  sim.NewResource(e),
			Acct: m.Acct.Nodes[i],
		}
		nd.CPU = &CPU{node: nd, acct: m.Acct.Nodes[i], maxAccum: cfg.MaxAccum}
		nd.NIC = nic.New(e, nd.ID, m.Net, nd.Mem, nd.Bus, nd.Acct, cfg.NIC)
		nd.NIC.RaiseInterrupt = nd.raiseInterrupt
		nd.Mem.Snoop = nd.NIC.Snoop
		nd.NIC.Start()
		m.Nodes = append(m.Nodes, nd)
	}
	return m
}

// Close terminates any unfinished app processes and recycles each
// node's page memory into the shared arena pool. Device engines are
// continuation state machines with no goroutines to unwind; they simply
// stop receiving events. The machine is unusable afterwards.
func (m *Machine) Close() {
	m.E.Shutdown()
	for _, nd := range m.Nodes {
		nd.Mem.Release()
	}
}

// RunParallel runs body once per node as the node's application process
// and executes the simulation until all of them finish. It returns the
// makespan (the virtual finish time of the slowest node). It may be
// called repeatedly for phased workloads.
func (m *Machine) RunParallel(name string, body func(nd *Node, p *sim.Proc)) sim.Time {
	start := m.E.Now()
	done := 0
	for _, nd := range m.Nodes {
		nd := nd
		m.E.Spawn(fmt.Sprintf("%s@%d", name, nd.ID), func(p *sim.Proc) {
			body(nd, p)
			nd.CPU.Flush(p)
			done++
		})
	}
	m.E.Run()
	if done != len(m.Nodes) {
		panic(fmt.Sprintf("machine: deadlock in %q at %v: %d of %d nodes finished, %d procs blocked: %v",
			name, m.E.Now(), done, len(m.Nodes), m.E.Blocked(), m.E.UnfinishedNames()))
	}
	return m.E.Now() - start
}

// BindCPU associates a process with an accounting context. Library code
// resolves contexts with Node.CPUFor. The binding rides on the process
// itself rather than a machine-wide map: CPUFor sits on the store/load
// hot path, where a map hash per memory operation is measurable.
func (m *Machine) BindCPU(p *sim.Proc, c *CPU) { p.SetContext(c) }

// CPUFor returns the accounting context for p: a bound handler context,
// or this node's application context. A nil p (setup time) also yields
// the application context.
func (nd *Node) CPUFor(p *sim.Proc) *CPU {
	if p != nil {
		if c, ok := p.Context().(*CPU); ok {
			return c
		}
	}
	return nd.CPU
}

// SpawnHandler runs body as a kernel/handler process on this node with
// its own accounting context that displaces the application.
func (nd *Node) SpawnHandler(name string, body func(p *sim.Proc, c *CPU)) {
	hc := nd.newHandlerCPU()
	pr := nd.M.E.Spawn(name, func(p *sim.Proc) {
		body(p, hc)
		hc.Flush(p)
	})
	nd.M.BindCPU(pr, hc)
}

// SetNotifyDispatch installs the user-level notification dispatcher for
// this node (the VMMC library layer).
func (nd *Node) SetNotifyDispatch(fn func(p *sim.Proc, pkt *nic.Packet)) {
	nd.notify = fn
}

// raiseInterrupt is the NIC's interrupt line. It never blocks: handler
// work runs in a freshly spawned kernel process and its cost is stolen
// from the application CPU.
func (nd *Node) raiseInterrupt(kind nic.InterruptKind, pkt *nic.Packet) {
	nd.Acct.Counters.Interrupts++
	if tr := nd.M.Cfg.Trace; tr != nil {
		tr.Record(int64(nd.M.E.Now()), trace.KInterrupt, int32(nd.ID), int64(kind), 0)
	}
	cost := nd.M.Cfg.Cost.InterruptCost
	switch kind {
	case nic.IntPerMessage:
		// The delivery-path stall in the NIC receive engine carries the
		// handler cost; nothing further to charge here.
	case nic.IntFlowControl:
		// Null handler: pure cost.
		nd.CPU.Steal(cost)
	case nic.IntNotification:
		// The handler runs after the NIC has recycled the packet into
		// its freelist, so it captures a detached clone, not the pooled
		// original.
		pkt = pkt.Clone()
		dispatch := nd.M.Cfg.Cost.NotifyDispatchCost
		nd.SpawnHandler(fmt.Sprintf("notify@%d", nd.ID), func(p *sim.Proc, c *CPU) {
			c.ChargeOverhead(cost + dispatch)
			c.Flush(p)
			if nd.notify != nil {
				nd.notify(p, pkt)
			}
		})
	}
}

// StoreUint32 performs an application store, paying the write-through
// cost and honoring flow control when the page is AU-bound.
func (nd *Node) StoreUint32(p *sim.Proc, addr memory.Addr, v uint32) {
	cost := nd.M.Cfg.Cost
	cpu := nd.CPUFor(p)
	if ent, ok := nd.NIC.Outgoing(addr.VPN()); ok && ent.AUEnable {
		nd.NIC.WaitAUReady(p)
		if cpu.Pending() >= cpu.maxAccum {
			cpu.Flush(p)
		}
		cpu.Charge(cost.AUStoreCost)
	} else {
		cpu.Charge(cost.StoreCost)
	}
	nd.Mem.WriteUint32(p, addr, v)
}

// StoreBytes performs an application store of a byte run (within or
// across pages). On AU-bound pages the CPU issues word-sized stores,
// checking flow control before each one, exactly as real code behind
// the snooped memory bus would; elsewhere it is a bulk copy.
func (nd *Node) StoreBytes(p *sim.Proc, addr memory.Addr, data []byte) {
	cost := nd.M.Cfg.Cost
	word := nd.NIC.Config().AUWordBytes
	for len(data) > 0 {
		n := memory.PageSize - addr.Offset()
		if n > len(data) {
			n = len(data)
		}
		cpu := nd.CPUFor(p)
		if ent, ok := nd.NIC.Outgoing(addr.VPN()); ok && ent.AUEnable {
			// Word-at-a-time write-through stores with per-store flow
			// control: every word is an uncached memory-bus write, which
			// is why deliberate update's DMA engine wins for bulk data
			// (§4.2).
			for off := 0; off < n; off += word {
				w := word
				if off+w > n {
					w = n - off
				}
				nd.NIC.WaitAUReady(p)
				if cpu.Pending() >= cpu.maxAccum {
					cpu.Flush(p)
				}
				cpu.Charge(cost.AUStoreCost)
				nd.Mem.Write(p, addr+memory.Addr(off), data[off:off+w])
			}
		} else {
			cpu.Charge(cost.CopyTime(n))
			nd.Mem.Write(p, addr, data[:n])
		}
		data = data[n:]
		addr += memory.Addr(n)
	}
}

// StoreUint64 performs an application store of a 64-bit word, paying
// the write-through cost and honoring flow control on AU-bound pages.
func (nd *Node) StoreUint64(p *sim.Proc, addr memory.Addr, v uint64) {
	cost := nd.M.Cfg.Cost
	cpu := nd.CPUFor(p)
	if ent, ok := nd.NIC.Outgoing(addr.VPN()); ok && ent.AUEnable {
		nd.NIC.WaitAUReady(p)
		if cpu.Pending() >= cpu.maxAccum {
			cpu.Flush(p)
		}
		cpu.Charge(cost.AUStoreCost)
	} else {
		cpu.Charge(cost.StoreCost)
	}
	nd.Mem.WriteUint64(p, addr, v)
}

// LoadUint32 performs an application load.
func (nd *Node) LoadUint32(p *sim.Proc, addr memory.Addr) uint32 {
	nd.CPUFor(p).Charge(nd.M.Cfg.Cost.LoadCost)
	return nd.Mem.ReadUint32(p, addr)
}

// LoadUint64 performs an application load of a 64-bit word.
func (nd *Node) LoadUint64(p *sim.Proc, addr memory.Addr) uint64 {
	nd.CPUFor(p).Charge(nd.M.Cfg.Cost.LoadCost)
	return nd.Mem.ReadUint64(p, addr)
}
