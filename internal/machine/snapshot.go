package machine

import (
	"fmt"

	"shrimp/internal/memory"
	"shrimp/internal/mesh"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
)

// Checkpoint support. A machine snapshot composes the per-layer pairs:
// engine counters, network link horizons, per-node accounting, NIC
// tables, and the copy-on-write memory snapshots. The config block is
// captured too — the harness mutates it (SyscallPerSend and the NIC
// knob block) when applying a branch's knobs after a shared warmup,
// and Restore must roll that back before the next branch applies its
// own.

// Snapshot captures a Machine at a quiescent instant. It stays
// attached (memory copy-on-write stays armed) until the machine is
// closed, so it can be restored once per branch.
//
//shrimp:state
type Snapshot struct {
	engine sim.EngineSnapshot
	cfg    Config
	net    mesh.NetworkSnapshot
	acct   []stats.Node
	cpu    []cpuState
	mem    []*memory.Snapshot
	nic    []nic.NICSnapshot
}

// cpuState is the carried-over part of an application CPU context at a
// phase boundary. RunParallel flushes each node's context as its body
// returns, so accum and pending are zero then — but a handler process
// that runs after that final flush leaves stolen time behind, to be
// charged at the application's first flush of the next phase.
//
//shrimp:state
type cpuState struct {
	accum   [stats.NumCategories]sim.Time
	pending sim.Time
	stolen  sim.Time
}

// Quiescent reports nil when the machine is checkpointable: engine
// drained, every CPU context flushed, every bus idle, every NIC parked.
func (m *Machine) Quiescent() error {
	if err := m.E.Quiescent(); err != nil {
		return err
	}
	for _, nd := range m.Nodes {
		switch {
		case nd.CPU.waiting:
			return fmt.Errorf("machine: node %d: CPU context marked waiting", nd.ID)
		case nd.Bus.Busy() || nd.Bus.QueueLen() != 0:
			return fmt.Errorf("machine: node %d: memory bus held", nd.ID)
		}
		if err := nd.NIC.Quiescent(); err != nil {
			return err
		}
	}
	return nil
}

// Take captures the machine. It panics if the machine is not
// quiescent: checkpoints are only legal between RunParallel phases.
func (m *Machine) Take() *Snapshot {
	if err := m.Quiescent(); err != nil {
		panic(fmt.Sprintf("machine: snapshot of non-quiescent machine: %v", err))
	}
	es, err := m.E.Snapshot()
	if err != nil {
		panic(err)
	}
	s := &Snapshot{
		engine: es,
		cfg:    m.Cfg,
		net:    m.Net.Snapshot(),
		acct:   make([]stats.Node, len(m.Nodes)),
		cpu:    make([]cpuState, len(m.Nodes)),
		mem:    make([]*memory.Snapshot, len(m.Nodes)),
		nic:    make([]nic.NICSnapshot, len(m.Nodes)),
	}
	for i, nd := range m.Nodes {
		s.acct[i] = *nd.Acct
		s.cpu[i] = cpuState{accum: nd.CPU.accum, pending: nd.CPU.pending, stolen: nd.CPU.stolen}
		s.mem[i] = nd.Mem.BeginSnapshot()
		s.nic[i] = nd.NIC.Snapshot()
	}
	return s
}

// Detach disarms the memory layer's copy-on-write capture. The
// snapshot can no longer be restored; the machine keeps running at
// full speed with no capture checks on its store paths.
func (s *Snapshot) Detach() {
	for _, ms := range s.mem {
		ms.Detach()
	}
}

// Restore rewinds the machine to the snapshot. The machine must be
// quiescent again (the previous branch ran to completion); the caller
// is expected to have verified higher layers too.
func (m *Machine) Restore(s *Snapshot) {
	if err := m.Quiescent(); err != nil {
		panic(fmt.Sprintf("machine: restore of non-quiescent machine: %v", err))
	}
	m.E.Restore(s.engine)
	m.Cfg = s.cfg
	m.Net.Restore(s.net)
	for i, nd := range m.Nodes {
		*nd.Acct = s.acct[i]
		nd.CPU.accum = s.cpu[i].accum
		nd.CPU.pending = s.cpu[i].pending
		nd.CPU.stolen = s.cpu[i].stolen
		s.mem[i].Restore()
		nd.NIC.Restore(s.nic[i])
	}
}
