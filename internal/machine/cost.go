// Package machine assembles the SHRIMP node and system model: a CPU
// cost-accounting model, per-node memory and memory bus, the network
// interface, and the mesh backplane, plus interrupt delivery and the
// kernel-cost knobs (system-call-per-send) the paper's what-if
// experiments toggle.
package machine

import "shrimp/internal/sim"

// CostModel captures the host-side timing of one node. The default
// values are calibrated so the simulator hits the paper's
// microbenchmarks: ~6 us deliberate-update latency, ~3.71 us
// automatic-update single-word latency, and <2 us user-level DMA send
// overhead on 60 MHz Pentium / EISA nodes.
type CostModel struct {
	// CycleTime is one CPU clock (16.67 ns at 60 MHz).
	CycleTime sim.Time
	// SendOverheadDU is the user-level two-instruction UDMA initiation
	// sequence, including the proxy-space references (§4.3: <2 us).
	SendOverheadDU sim.Time
	// SyscallCost is the trap plus kernel driver work a
	// system-call-per-send design pays on every message (§4.3).
	SyscallCost sim.Time
	// InterruptCost is a null kernel-level interrupt handler (§4.4).
	InterruptCost sim.Time
	// NotifyDispatchCost delivers a queued user-level notification
	// (semantically like a Unix signal, §2.2).
	NotifyDispatchCost sim.Time
	// StoreCost is an ordinary cached store.
	StoreCost sim.Time
	// AUStoreCost is a store to a write-through automatic-update-bound
	// page, which must go to the memory bus.
	AUStoreCost sim.Time
	// LoadCost is an ordinary cached load (used for polling receive
	// buffers).
	LoadCost sim.Time
	// MemCopyBandwidth is local memory copy throughput in bytes/sec
	// (gather/scatter, diff application).
	MemCopyBandwidth float64
	// PageFaultCost is a VM protection trap entry/exit (SVM).
	PageFaultCost sim.Time
	// DiffWordCost is the per-32-bit-word cost of creating or applying
	// an SVM diff.
	DiffWordCost sim.Time
}

// DefaultCostModel returns the SHRIMP node (60 MHz Pentium, EISA).
func DefaultCostModel() CostModel {
	return CostModel{
		CycleTime:          17 * sim.Nanosecond,
		SendOverheadDU:     1700 * sim.Nanosecond,
		SyscallCost:        11 * sim.Microsecond,
		InterruptCost:      17 * sim.Microsecond,
		NotifyDispatchCost: 9 * sim.Microsecond,
		StoreCost:          34 * sim.Nanosecond,
		AUStoreCost:        450 * sim.Nanosecond,
		LoadCost:           34 * sim.Nanosecond,
		MemCopyBandwidth:   45e6,
		PageFaultCost:      24 * sim.Microsecond,
		DiffWordCost:       90 * sim.Nanosecond,
	}
}

// MyrinetCostModel returns the §4.1 comparison host: a 166 MHz Pentium
// with PCI. The CPU-side costs scale with clock rate; the send path is
// programmed I/O into the adapter plus firmware processing (modeled in
// the NIC's MyrinetLikeConfig).
func MyrinetCostModel() CostModel {
	c := DefaultCostModel()
	scale := func(t sim.Time) sim.Time { return t * 60 / 166 }
	c.CycleTime = 6 * sim.Nanosecond
	c.SendOverheadDU = 2600 * sim.Nanosecond // PIO descriptor + doorbell
	c.SyscallCost = scale(c.SyscallCost)
	c.InterruptCost = scale(c.InterruptCost)
	c.NotifyDispatchCost = scale(c.NotifyDispatchCost)
	c.StoreCost = scale(c.StoreCost)
	c.AUStoreCost = scale(c.AUStoreCost)
	c.LoadCost = scale(c.LoadCost)
	c.MemCopyBandwidth = 120e6
	c.PageFaultCost = scale(c.PageFaultCost)
	c.DiffWordCost = scale(c.DiffWordCost)
	return c
}

// CopyTime is the local memory-copy time for n bytes.
func (c *CostModel) CopyTime(n int) sim.Time {
	return sim.TransferTime(n, c.MemCopyBandwidth)
}
