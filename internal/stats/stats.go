// Package stats defines the per-node execution-time accounting and event
// counters the paper's tables and figures are built from: the
// computation / communication / lock / barrier / overhead breakdown of
// Figure 4 and the message, notification, interrupt and system-call
// counts behind Tables 2-4.
package stats

import (
	"fmt"

	"shrimp/internal/sim"
)

// Category is one slice of the execution-time breakdown.
type Category int

const (
	// Compute is useful application work.
	Compute Category = iota
	// Comm is time blocked waiting for data or message transfer.
	Comm
	// Lock is time blocked acquiring locks.
	Lock
	// Barrier is time blocked at barriers.
	Barrier
	// Overhead is protocol and kernel overhead: system calls, interrupt
	// handlers, diff creation/application, fault service.
	Overhead
	// NumCategories is the number of breakdown slices.
	NumCategories
)

var categoryNames = [NumCategories]string{"compute", "comm", "lock", "barrier", "overhead"}

func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Breakdown is virtual time spent per category.
type Breakdown [NumCategories]sim.Time

// Total sums all categories.
func (b *Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Counters aggregates communication events on one node.
type Counters struct {
	MessagesSent  int64 // VMMC-level sends (deliberate update transfers begun)
	MessagesRecv  int64 // complete messages delivered
	Notifications int64 // user-level notifications dispatched
	Interrupts    int64 // hardware interrupts taken (any cause)
	Syscalls      int64 // kernel traps (syscall-per-send experiment)
	AUStores      int64 // stores snooped on AU-bound pages
	AUPackets     int64 // automatic-update packets injected
	DUTransfers   int64 // deliberate-update DMA transfers
	BytesSent     int64 // payload bytes injected
	FlowStalls    int64 // CPU stalls due to outgoing-FIFO flow control
	PageFaults    int64 // SVM protection faults
	DiffsCreated  int64
	DiffsApplied  int64
	PagesFetched  int64
}

// Add accumulates another counter set into c.
func (c *Counters) Add(o *Counters) {
	c.MessagesSent += o.MessagesSent
	c.MessagesRecv += o.MessagesRecv
	c.Notifications += o.Notifications
	c.Interrupts += o.Interrupts
	c.Syscalls += o.Syscalls
	c.AUStores += o.AUStores
	c.AUPackets += o.AUPackets
	c.DUTransfers += o.DUTransfers
	c.BytesSent += o.BytesSent
	c.FlowStalls += o.FlowStalls
	c.PageFaults += o.PageFaults
	c.DiffsCreated += o.DiffsCreated
	c.DiffsApplied += o.DiffsApplied
	c.PagesFetched += o.PagesFetched
}

// Node is the complete account for one node.
type Node struct {
	Breakdown Breakdown
	Counters  Counters
}

// Machine aggregates accounts across all nodes of a run.
type Machine struct {
	Nodes []*Node
}

// NewMachine returns accounts for n nodes.
func NewMachine(n int) *Machine {
	m := &Machine{Nodes: make([]*Node, n)}
	for i := range m.Nodes {
		m.Nodes[i] = &Node{}
	}
	return m
}

// TotalBreakdown sums the per-node breakdowns.
func (m *Machine) TotalBreakdown() Breakdown {
	var b Breakdown
	for _, n := range m.Nodes {
		b.Add(&n.Breakdown)
	}
	return b
}

// TotalCounters sums the per-node counters.
func (m *Machine) TotalCounters() Counters {
	var c Counters
	for _, n := range m.Nodes {
		c.Add(&n.Counters)
	}
	return c
}
