package stats

import (
	"testing"
	"testing/quick"

	"shrimp/internal/sim"
)

func TestBreakdownTotalAndAdd(t *testing.T) {
	var a, b Breakdown
	a[Compute] = 10
	a[Comm] = 5
	b[Compute] = 1
	b[Overhead] = 4
	a.Add(&b)
	if a[Compute] != 11 || a[Overhead] != 4 || a.Total() != 20 {
		t.Fatalf("breakdown after add: %+v (total %d)", a, a.Total())
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		Compute: "compute", Comm: "comm", Lock: "lock",
		Barrier: "barrier", Overhead: "overhead",
	}
	for c, n := range want {
		if c.String() != n {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), n)
		}
	}
	if Category(99).String() == "" {
		t.Error("out-of-range category produced empty string")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{MessagesSent: 1, Notifications: 2, AUStores: 3, DiffsCreated: 4}
	b := Counters{MessagesSent: 10, Interrupts: 5, DiffsApplied: 6, PagesFetched: 7}
	a.Add(&b)
	if a.MessagesSent != 11 || a.Interrupts != 5 || a.Notifications != 2 ||
		a.DiffsApplied != 6 || a.PagesFetched != 7 {
		t.Fatalf("counters after add: %+v", a)
	}
}

func TestMachineAggregation(t *testing.T) {
	m := NewMachine(3)
	for i, nd := range m.Nodes {
		nd.Breakdown[Compute] = sim.Time(10 * (i + 1))
		nd.Counters.MessagesSent = int64(i)
	}
	if got := m.TotalBreakdown()[Compute]; got != 60 {
		t.Fatalf("total compute = %v", got)
	}
	if got := m.TotalCounters().MessagesSent; got != 3 {
		t.Fatalf("total messages = %d", got)
	}
}

// Property: Add is commutative and Total is linear.
func TestBreakdownAddProperty(t *testing.T) {
	f := func(x, y [NumCategories]uint32) bool {
		var a, b, ab, ba Breakdown
		for i := range x {
			a[i] = sim.Time(x[i])
			b[i] = sim.Time(y[i])
		}
		ab = a
		ab.Add(&b)
		ba = b
		ba.Add(&a)
		return ab == ba && ab.Total() == a.Total()+b.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
