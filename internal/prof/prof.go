// Package prof wires Go's runtime profilers to command-line flags. Both
// binaries expose -cpuprofile, -memprofile and -blockprofile through it,
// so a hot run can be inspected with `go tool pprof` without editing the
// source or wrapping the workload in a test.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the values of the profiler flags registered by
// RegisterFlags, ready to hand to Start once the flag set is parsed.
type Flags struct {
	CPU, Mem, Block *string
}

// RegisterFlags installs the three standard profiler flags
// (-cpuprofile, -memprofile, -blockprofile) on fs. Both command-line
// binaries share this one definition instead of repeating the flag
// blocks.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		CPU:   fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem:   fs.String("memprofile", "", "write a heap profile to this file at exit"),
		Block: fs.String("blockprofile", "", "write a blocking profile to this file at exit"),
	}
}

// Start begins the profiles the parsed flags selected; see the
// package-level Start.
func (f *Flags) Start() (stop func(), err error) {
	return Start(*f.CPU, *f.Mem, *f.Block)
}

// Start begins the profiles selected by non-empty paths and returns a
// stop function that must run exactly once before the process exits
// (typically via defer in main). An empty path disables that profiler,
// so Start("", "", "") is a no-op returning a no-op stop.
//
// The CPU profile streams while the workload runs; the heap profile is a
// point-in-time snapshot written at stop after a forced GC, so it shows
// steady-state retention rather than transient garbage; the block
// profile records everything from Start to stop with full sampling
// (rate 1), which is affordable here because the simulator parks on
// channels in a controlled way.
func Start(cpuPath, memPath, blockPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			writeProfile("heap", memPath, true)
		}
		if blockPath != "" {
			writeProfile("block", blockPath, false)
			runtime.SetBlockProfileRate(0)
		}
	}, nil
}

// writeProfile snapshots a named runtime profile to path, reporting
// failures on stderr rather than aborting: a profile write error at exit
// must not discard the workload's results.
func writeProfile(name, path string, gcFirst bool) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prof: %v\n", err)
		return
	}
	defer f.Close()
	if gcFirst {
		runtime.GC() // flush recently freed objects out of the heap profile
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "prof: write %s profile: %v\n", name, err)
	}
}
