// Package bsp is a bulk-synchronous-parallel library over VMMC,
// mirroring cBSP, the modified-BSP system built on SHRIMP (Alpert &
// Philbin, [3] in the paper). Computation proceeds in supersteps: Put
// writes one-sided into a peer's shared area, and Sync makes all puts
// of the superstep visible. Synchronization is "zero-cost" in the cBSP
// sense: each rank announces with a counter word — on the same ordered
// channel as its data — how many puts it sent, so the barrier piggybacks
// on the data stream instead of a separate round of synchronization
// messages.
package bsp

import (
	"encoding/binary"
	"fmt"

	"shrimp/internal/machine"
	"shrimp/internal/memory"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/vmmc"
)

// Config sizes the per-rank shared areas.
type Config struct {
	// AreaBytes is each rank's put-target area.
	AreaBytes int
}

// DefaultConfig gives each rank 256 KB.
func DefaultConfig() Config { return Config{AreaBytes: 256 * 1024} }

// World is the BSP communicator spanning all nodes.
type World struct {
	sys   *vmmc.System
	cfg   Config
	procs []*Proc
}

// Proc is the per-rank library state.
type Proc struct {
	w    *World
	rank int
	node *machine.Node
	ep   *vmmc.Endpoint

	area    *vmmc.Export   // my put-target area (+1 control page)
	imports []*vmmc.Import // peers' areas
	scratch memory.Addr

	step     int
	sentTo   []uint32 // puts sent to each peer this superstep
	consumed []uint32 // puts seen from each peer, cumulative
	seen     int64
}

// ctl-page layout (last page of each area): per sender rank, two words:
// cumulative puts announced [8*rank] and the superstep stamp [8*rank+4].

// New builds a BSP world over every node of sys.
func New(sys *vmmc.System, cfg Config) *World {
	if cfg.AreaBytes <= 0 {
		cfg.AreaBytes = DefaultConfig().AreaBytes
	}
	n := len(sys.EPs)
	w := &World{sys: sys, cfg: cfg}
	pages := (cfg.AreaBytes + memory.PageSize - 1) / memory.PageSize
	for r := 0; r < n; r++ {
		pr := &Proc{
			w:        w,
			rank:     r,
			node:     sys.M.Nodes[r],
			ep:       sys.EP(r),
			sentTo:   make([]uint32, n),
			consumed: make([]uint32, n),
		}
		pr.area = pr.ep.Export(nil, pages+1)
		pr.scratch = pr.node.Mem.Alloc(1)
		w.procs = append(w.procs, pr)
	}
	for r := 0; r < n; r++ {
		w.procs[r].imports = make([]*vmmc.Import, n)
		for o := 0; o < n; o++ {
			if o != r {
				w.procs[r].imports[o] = w.procs[r].ep.Import(nil, w.procs[o].area)
			}
		}
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// Proc returns the library state for a rank.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// Rank reports this process's rank.
func (pr *Proc) Rank() int { return pr.rank }

// Size reports the world size.
func (pr *Proc) Size() int { return len(pr.w.procs) }

// Node returns the underlying machine node.
func (pr *Proc) Node() *machine.Node { return pr.node }

// AreaBytes reports the usable put-target area size.
func (pr *Proc) AreaBytes() int { return (pr.area.PageCnt - 1) * memory.PageSize }

func (pr *Proc) ctlOff() int { return (pr.area.PageCnt - 1) * memory.PageSize }

// Put writes data one-sided into peer dst's area at byte offset off.
// The write becomes visible to dst after dst's next Sync. As in classic
// BSP practice, a rank that puts to the same offset in consecutive
// supersteps can overwrite data the receiver has not consumed yet;
// applications double-buffer (alternate offsets per superstep) when the
// consumer reads after its Sync.
func (pr *Proc) Put(p *sim.Proc, dst, off int, data []byte) {
	if dst == pr.rank {
		// Local put: a plain copy into our own area.
		pr.node.CPUFor(p).Charge(pr.node.M.Cfg.Cost.CopyTime(len(data)))
		pr.node.Mem.Write(p, pr.area.Base+memory.Addr(off), data)
		return
	}
	if off < 0 || off+len(data) > pr.AreaBytes() {
		panic(fmt.Sprintf("bsp: put of %d bytes at %d outside area", len(data), off))
	}
	// Stage and send; deliberate update, zero-copy model (the stage is
	// simulator bookkeeping over the caller's buffer).
	pr.ep.WaitSendsDone(p) // scratch-area reuse safety
	stage := pr.scratchArea(len(data))
	pr.node.Mem.Write(p, stage, data)
	pr.imports[dst].Send(p, stage, off, len(data), vmmc.SendOpts{})
	pr.sentTo[dst]++
}

// scratchArea grows the staging area on demand.
func (pr *Proc) scratchArea(n int) memory.Addr {
	if n <= memory.PageSize {
		return pr.scratch
	}
	// Rare large put: allocate a dedicated staging run.
	return pr.node.Mem.AllocBytes(n)
}

// PutUint32 writes one word into peer dst's area.
func (pr *Proc) PutUint32(p *sim.Proc, dst, off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	pr.Put(p, dst, off, b[:])
}

// Get reads from this rank's own area (puts from the previous
// superstep are visible after Sync).
func (pr *Proc) Get(p *sim.Proc, off int, buf []byte) {
	pr.node.CPUFor(p).Charge(pr.node.M.Cfg.Cost.CopyTime(len(buf)))
	pr.node.Mem.Read(p, pr.area.Base+memory.Addr(off), buf)
}

// GetUint32 reads one word from this rank's own area.
func (pr *Proc) GetUint32(p *sim.Proc, off int) uint32 {
	return pr.node.LoadUint32(p, pr.area.Base+memory.Addr(off))
}

// Sync ends the superstep: it announces this rank's put counts to every
// peer on the ordered data channels, then waits until every peer's
// announcement for this superstep has arrived (by which point, by
// channel ordering, so have their puts). This is cBSP's zero-cost
// synchronization: no separate barrier round-trip beyond the counter
// words.
func (pr *Proc) Sync(p *sim.Proc) {
	n := pr.Size()
	if n == 1 {
		pr.step++
		return
	}
	step := uint32(pr.step + 1)
	// Announce: cumulative put count + step stamp, after the data.
	for o := 0; o < n; o++ {
		if o == pr.rank {
			continue
		}
		pr.consumed[o] += 0 // (kept for symmetry with richer protocols)
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], pr.sentTo[o])
		binary.LittleEndian.PutUint32(b[4:], step)
		pr.ep.WaitSendsDone(p)
		pr.node.Mem.Write(p, pr.scratch, b[:])
		pr.imports[o].Send(p, pr.scratch, pr.ctlOff()+8*pr.rank, 8,
			vmmc.SendOpts{Internal: true})
	}
	// Wait for every peer's stamp.
	cpu := pr.node.CPUFor(p)
	since := cpu.BeginWait(p)
	for {
		ready := true
		for o := 0; o < n; o++ {
			if o == pr.rank {
				continue
			}
			stamp := pr.node.Mem.ReadUint32(nil,
				pr.area.Base+memory.Addr(pr.ctlOff()+8*o+4))
			if stamp < step {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		pr.seen = pr.area.WaitUpdate(p, pr.seen)
	}
	cpu.EndWait(p, stats.Barrier, since)
	pr.step++
}
