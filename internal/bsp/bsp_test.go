package bsp

import (
	"bytes"
	"testing"

	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/vmmc"
)

func newWorld(t *testing.T, nodes int) *World {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	t.Cleanup(m.Close)
	return New(vmmc.NewSystem(m), Config{AreaBytes: 64 * 1024})
}

func run(w *World, body func(pr *Proc, p *sim.Proc)) sim.Time {
	return w.sys.M.RunParallel("bsp", func(nd *machine.Node, p *sim.Proc) {
		body(w.Proc(int(nd.ID)), p)
	})
}

func TestPutVisibleAfterSync(t *testing.T) {
	const n = 4
	w := newWorld(t, n)
	run(w, func(pr *Proc, p *sim.Proc) {
		// Everyone puts its rank into every peer's slot row.
		for o := 0; o < n; o++ {
			pr.PutUint32(p, o, 4*pr.Rank(), uint32(100+pr.Rank()))
		}
		pr.Sync(p)
		for r := 0; r < n; r++ {
			if got := pr.GetUint32(p, 4*r); got != uint32(100+r) {
				t.Errorf("rank %d slot %d = %d", pr.Rank(), r, got)
			}
		}
	})
}

func TestSupersteps(t *testing.T) {
	// A ring shift repeated over supersteps with double-buffered slots:
	// after k steps, the token started at rank 0 sits at rank k%n.
	const n = 4
	const steps = 6
	w := newWorld(t, n)
	run(w, func(pr *Proc, p *sim.Proc) {
		token := uint32(0)
		if pr.Rank() == 0 {
			token = 777
		}
		for s := 0; s < steps; s++ {
			slot := 64 * (s % 2) // double buffering
			next := (pr.Rank() + 1) % n
			pr.PutUint32(p, next, slot, token)
			pr.Sync(p)
			token = pr.GetUint32(p, slot)
		}
		want := uint32(0)
		if pr.Rank() == steps%n {
			want = 777
		}
		if token != want {
			t.Errorf("rank %d token %d, want %d", pr.Rank(), token, want)
		}
	})
}

func TestLargePut(t *testing.T) {
	w := newWorld(t, 2)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	run(w, func(pr *Proc, p *sim.Proc) {
		if pr.Rank() == 0 {
			pr.Put(p, 1, 128, data)
		}
		pr.Sync(p)
		if pr.Rank() == 1 {
			got := make([]byte, len(data))
			pr.Get(p, 128, got)
			if !bytes.Equal(got, data) {
				t.Error("large put corrupted")
			}
		}
	})
}

func TestSyncIsBarrier(t *testing.T) {
	const n = 5
	w := newWorld(t, n)
	var maxArrive, minLeave sim.Time
	minLeave = 1 << 62
	run(w, func(pr *Proc, p *sim.Proc) {
		pr.Node().CPUFor(p).Charge(sim.Time(pr.Rank()) * 300 * sim.Microsecond)
		pr.Node().CPUFor(p).Flush(p)
		if t := p.Now(); t > maxArrive {
			maxArrive = t
		}
		pr.Sync(p)
		if t := p.Now(); t < minLeave {
			minLeave = t
		}
	})
	if minLeave < maxArrive {
		t.Fatalf("a rank left Sync at %v before the last arrived at %v", minLeave, maxArrive)
	}
}

func TestSingleRankWorld(t *testing.T) {
	w := newWorld(t, 1)
	run(w, func(pr *Proc, p *sim.Proc) {
		pr.PutUint32(p, 0, 0, 9)
		pr.Sync(p)
		if pr.GetUint32(p, 0) != 9 {
			t.Error("local put lost")
		}
	})
}

func TestZeroCostSyncLowTraffic(t *testing.T) {
	// The sync should add only counter words on existing channels: with
	// no puts at all, one superstep costs (n-1) tiny sends per rank.
	const n = 4
	w := newWorld(t, n)
	run(w, func(pr *Proc, p *sim.Proc) { pr.Sync(p) })
	c := w.sys.M.Acct.TotalCounters()
	if c.DUTransfers > int64(3*n*(n-1)) {
		t.Fatalf("sync used %d transfers; not zero-cost", c.DUTransfers)
	}
}
