package socketlib

import (
	"bytes"
	"testing"

	"shrimp/internal/machine"
	"shrimp/internal/ring"
	"shrimp/internal/sim"
	"shrimp/internal/vmmc"
)

func newStack(t *testing.T, nodes int, cfg Config) (*vmmc.System, *Stack) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	t.Cleanup(m.Close)
	sys := vmmc.NewSystem(m)
	return sys, NewStack(sys, cfg)
}

func TestConnectReadWrite(t *testing.T) {
	for _, mode := range []ring.Mode{ring.DU, ring.AU} {
		sys, st := newStack(t, 2, Config{Mode: mode, Combine: true, RingBytes: 32 * 1024})
		l := st.Listen(1, 80)
		sys.M.RunParallel("sock", func(nd *machine.Node, p *sim.Proc) {
			switch nd.ID {
			case 0:
				c := st.Dial(p, 0, 1, 80)
				c.Write(p, []byte("GET /shrimp"))
				buf := make([]byte, 2)
				c.ReadFull(p, buf)
				if string(buf) != "OK" {
					t.Errorf("%v: reply %q", mode, buf)
				}
			case 1:
				c := l.Accept(p)
				buf := make([]byte, 11)
				c.ReadFull(p, buf)
				if string(buf) != "GET /shrimp" {
					t.Errorf("%v: request %q", mode, buf)
				}
				c.Write(p, []byte("OK"))
			}
		})
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	sys, st := newStack(t, 2, DefaultConfig())
	l := st.Listen(1, 9)
	const n = 96 * 1024
	mk := func(seed byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = seed + byte(i%97)
		}
		return b
	}
	up, down := mk(1), mk(2)
	sys.M.RunParallel("bidir", func(nd *machine.Node, p *sim.Proc) {
		switch nd.ID {
		case 0:
			c := st.Dial(p, 0, 1, 9)
			got := make([]byte, n)
			done := make(chan struct{})
			_ = done
			// Interleave write and read to avoid buffer deadlock.
			const chunk = 8192
			for off := 0; off < n; off += chunk {
				c.Write(p, up[off:off+chunk])
				c.ReadFull(p, got[off:off+chunk])
			}
			if !bytes.Equal(got, down) {
				t.Error("client stream corrupted")
			}
		case 1:
			c := l.Accept(p)
			got := make([]byte, n)
			const chunk = 8192
			for off := 0; off < n; off += chunk {
				c.ReadFull(p, got[off:off+chunk])
				c.Write(p, down[off:off+chunk])
			}
			if !bytes.Equal(got, up) {
				t.Error("server stream corrupted")
			}
		}
	})
}

func TestBlockTransferExtension(t *testing.T) {
	sys, st := newStack(t, 2, DefaultConfig())
	l := st.Listen(1, 5000)
	blocks := [][]byte{
		[]byte("small"),
		bytes.Repeat([]byte{0xaa}, 8192),
		{},
		bytes.Repeat([]byte{0x55}, 70000),
	}
	sys.M.RunParallel("blocks", func(nd *machine.Node, p *sim.Proc) {
		switch nd.ID {
		case 0:
			c := st.Dial(p, 0, 1, 5000)
			for _, b := range blocks {
				c.WriteBlock(p, b)
			}
		case 1:
			c := l.Accept(p)
			for i, want := range blocks {
				got := c.ReadBlock(p)
				if !bytes.Equal(got, want) {
					t.Errorf("block %d corrupted (%d vs %d bytes)", i, len(got), len(want))
				}
			}
		}
	})
}

func TestManyClientsOneServer(t *testing.T) {
	const n = 8
	sys, st := newStack(t, n, DefaultConfig())
	l := st.Listen(0, 7)
	sys.M.RunParallel("many", func(nd *machine.Node, p *sim.Proc) {
		if nd.ID == 0 {
			for i := 1; i < n; i++ {
				c := l.Accept(p)
				req := c.ReadBlock(p)
				c.WriteBlock(p, append([]byte("echo:"), req...))
			}
			return
		}
		c := st.Dial(p, int(nd.ID), 0, 7)
		c.WriteBlock(p, []byte{byte(nd.ID)})
		rep := c.ReadBlock(p)
		if len(rep) != 6 || rep[5] != byte(nd.ID) {
			t.Errorf("node %d got reply %v", nd.ID, rep)
		}
	})
}

func TestDialUnboundPortPanics(t *testing.T) {
	sys, st := newStack(t, 2, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic dialing unbound port")
		}
	}()
	_ = sys
	st.Dial(nil, 0, 1, 404)
}
