// Package socketlib is a stream-sockets-compatible library over VMMC,
// mirroring the SHRIMP sockets port ([17] in the paper): connections
// are pairs of flow-controlled byte streams with Read/Write semantics,
// plus the block-transfer extension the DFS cluster file system uses.
// The bulk-transfer mechanism (deliberate vs automatic update) is
// selectable, as in the paper's library what-if experiments.
package socketlib

import (
	"fmt"

	"shrimp/internal/ring"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/vmmc"
)

// Config controls the library build.
type Config struct {
	// Mode selects deliberate vs automatic update for stream data.
	Mode ring.Mode
	// Combine enables AU combining (AU mode only).
	Combine bool
	// RingBytes is the per-direction buffer capacity.
	RingBytes int
}

// DefaultConfig uses deliberate update with 64 KB socket buffers.
func DefaultConfig() Config {
	return Config{Mode: ring.DU, Combine: true, RingBytes: 64 * 1024}
}

// Stack is the per-system sockets layer.
type Stack struct {
	sys       *vmmc.System
	cfg       Config
	listeners map[addr]*Listener
}

type addr struct {
	node int
	port int
}

// NewStack builds the sockets layer over sys.
func NewStack(sys *vmmc.System, cfg Config) *Stack {
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = DefaultConfig().RingBytes
	}
	return &Stack{sys: sys, cfg: cfg, listeners: make(map[addr]*Listener)}
}

// Conn is one end of an established connection.
type Conn struct {
	localNode, peerNode int
	tx, rx              *ring.Ring
	bytesIn, bytesOut   int64
}

// ConnStats counts the bytes that moved through one end of a
// connection, framing included — the measured wire payload the
// open-loop workload reports goodput from.
type ConnStats struct {
	BytesIn  int64
	BytesOut int64
}

// Stats returns this end's byte counters.
func (c *Conn) Stats() ConnStats {
	return ConnStats{BytesIn: c.bytesIn, BytesOut: c.bytesOut}
}

// LocalNode reports the node this end lives on.
func (c *Conn) LocalNode() int { return c.localNode }

// PeerNode reports the remote node.
func (c *Conn) PeerNode() int { return c.peerNode }

// Write sends data, blocking for socket-buffer space as needed.
func (c *Conn) Write(p *sim.Proc, data []byte) int {
	c.tx.Write(p, data)
	c.bytesOut += int64(len(data))
	return len(data)
}

// Read receives up to len(buf) bytes, blocking until at least one
// arrives.
func (c *Conn) Read(p *sim.Proc, buf []byte) int {
	n := c.rx.Read(p, buf)
	c.bytesIn += int64(n)
	return n
}

// ReadFull receives exactly len(buf) bytes.
func (c *Conn) ReadFull(p *sim.Proc, buf []byte) {
	c.rx.ReadFull(p, buf)
	c.bytesIn += int64(len(buf))
}

// Available reports bytes readable without blocking.
func (c *Conn) Available(p *sim.Proc) int { return c.rx.Available(p) }

// WriteBlock is the VMMC sockets block-transfer extension: a length
// -prefixed write the peer retrieves with ReadBlock. (On SHRIMP this
// avoided an extra copy; here it is framing sugar over the same
// zero-intermediary stream.)
func (c *Conn) WriteBlock(p *sim.Proc, data []byte) {
	var hdr [8]byte
	putUint64(hdr[:], uint64(len(data)))
	c.Write(p, hdr[:])
	c.Write(p, data)
}

// ReadBlock retrieves one block sent with WriteBlock.
func (c *Conn) ReadBlock(p *sim.Proc) []byte {
	var hdr [8]byte
	c.ReadFull(p, hdr[:])
	n := getUint64(hdr[:])
	data := make([]byte, n)
	c.ReadFull(p, data)
	return data
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Listener accepts connections on a (node, port) address.
type Listener struct {
	stack   *Stack
	addr    addr
	backlog *sim.Queue[*Conn]
}

// Listen binds a listener. It is a setup-time operation.
func (s *Stack) Listen(node, port int) *Listener {
	a := addr{node: node, port: port}
	if _, dup := s.listeners[a]; dup {
		panic(fmt.Sprintf("socketlib: port %d already bound on node %d", port, node))
	}
	l := &Listener{stack: s, addr: a, backlog: sim.NewQueue[*Conn](s.sys.M.E)}
	s.listeners[a] = l
	return l
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept(p *sim.Proc) *Conn {
	nd := l.stack.sys.M.Nodes[l.addr.node]
	since := nd.CPUFor(p).BeginWait(p)
	c := l.backlog.Pop(p)
	nd.CPUFor(p).EndWait(p, stats.Comm, since)
	return c
}

// Dial connects from fromNode to a listener at (toNode, port), building
// the two directional streams. The connection handshake is modeled as a
// kernel operation on both ends.
func (s *Stack) Dial(p *sim.Proc, fromNode, toNode, port int) *Conn {
	l, ok := s.listeners[addr{node: toNode, port: port}]
	if !ok {
		panic(fmt.Sprintf("socketlib: connection refused to node %d port %d", toNode, port))
	}
	rc := ring.Config{Bytes: s.cfg.RingBytes, Mode: s.cfg.Mode, Combine: s.cfg.Combine}
	fwd := ring.New(s.sys.EP(fromNode), s.sys.EP(toNode), rc) // client -> server
	rev := ring.New(s.sys.EP(toNode), s.sys.EP(fromNode), rc) // server -> client
	client := &Conn{localNode: fromNode, peerNode: toNode, tx: fwd, rx: rev}
	server := &Conn{localNode: toNode, peerNode: fromNode, tx: rev, rx: fwd}
	s.sys.M.Nodes[fromNode].CPUFor(p).ChargeOverhead(s.sys.M.Cfg.Cost.SyscallCost)
	if p != nil {
		s.sys.M.Nodes[fromNode].CPUFor(p).Flush(p)
	}
	l.backlog.Push(server)
	return client
}
